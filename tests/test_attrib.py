"""Latency attribution: interval sweep, priority stack, end-to-end sums."""

import pytest

from repro.bench.runner import Bench
from repro.obs import Observer
from repro.obs.attrib import (ATTRIB_PHASES, LatencyAttributor,
                              attribute_bench)
from repro.sim.core import Simulator
from repro.workloads import Smallbank


def small_bench(system="xenic", n=3, seed=7):
    wl = Smallbank(n, accounts_per_server=1500, hot_keys_fraction=0.25,
                   seed=seed)
    return Bench(system, wl, n_nodes=n, seed=seed, obs=True)


# ---------------------------------------------------------------------------
# unit: the sweep over hand-built span sets
# ---------------------------------------------------------------------------


def make_observer():
    sim = Simulator()
    return Observer(sim)


def test_sweep_partitions_exactly():
    obs = make_observer()
    # txn [0, 100]
    obs.span("pay", "txn", 0, "txn", 0.0, 100.0, txn_id=1,
             args={"attempts": 1})
    obs.attrib_span("dma", 0, 10.0, 20.0, 1)
    # nic span with known service 5 of a 10us interval -> 5 queue + 5 svc
    obs.attrib_span("nic", 1, 30.0, 40.0, 1, svc=5.0)
    obs.span("execute_core", "server", 1, "nicrt", 50.0, 20.0, txn_id=1)
    obs.attrib_span("wire", 0, 45.0, 90.0, 1)
    res = LatencyAttributor(obs).attribute()
    assert res.count == 1
    t = res.txns[0]
    assert t.phases["dma"] == pytest.approx(10.0)
    assert t.phases["nic_queue"] == pytest.approx(5.0)
    assert t.phases["nic_service"] == pytest.approx(5.0)
    # handler [50,70] outranks the overlapping wire [45,90]
    assert t.phases["handler"] == pytest.approx(20.0)
    assert t.phases["wire"] == pytest.approx(25.0)
    assert t.phases["other"] == pytest.approx(100.0 - 10 - 10 - 20 - 25)
    assert t.total_us == pytest.approx(t.latency_us)
    assert t.residual_us() < 1e-9
    assert t.dominant == "other"


def test_sweep_priority_under_full_overlap():
    obs = make_observer()
    obs.span("pay", "txn", 0, "txn", 0.0, 10.0, txn_id=2)
    # coordinator phase covers everything; dma and backoff carve it up
    obs.span("phase_execute", "phase", 0, "proto", 0.0, 10.0, txn_id=2)
    obs.attrib_span("dma", 0, 2.0, 4.0, 2)
    obs.attrib_span("backoff", 0, 3.0, 6.0, 2)  # outranks dma on [3,4]
    res = LatencyAttributor(obs).attribute()
    t = res.txns[0]
    assert t.phases["backoff"] == pytest.approx(3.0)
    assert t.phases["dma"] == pytest.approx(1.0)
    assert t.phases["coord"] == pytest.approx(6.0)
    assert t.phases["other"] == pytest.approx(0.0)


def test_spans_clipped_to_txn_window():
    obs = make_observer()
    obs.span("pay", "txn", 0, "txn", 10.0, 10.0, txn_id=3)
    obs.attrib_span("dma", 0, 5.0, 15.0, 3)  # overhangs the start
    obs.attrib_span("wire", 0, 18.0, 30.0, 3)  # overhangs the end
    t = LatencyAttributor(obs).attribute().txns[0]
    assert t.phases["dma"] == pytest.approx(5.0)
    assert t.phases["wire"] == pytest.approx(2.0)
    assert t.total_us == pytest.approx(10.0)


def test_client_queue_rides_along():
    obs = make_observer()
    obs.span("pay", "txn", 0, "txn", 0.0, 10.0, txn_id=4)
    res = LatencyAttributor(obs).attribute(client_queue={4: 7.5})
    t = res.txns[0]
    assert t.phases["client_queue"] == pytest.approx(7.5)
    # queueing extends the sum past the service latency ...
    assert t.total_us == pytest.approx(17.5)
    # ... but the residual check still compares service time only
    assert t.residual_us() < 1e-9


def test_abort_instants_counted_by_reason():
    obs = make_observer()
    obs.instant("abort", "txn", 0, "txn", 5.0, txn_id=9,
                args={"reason": "lock-conflict"})
    obs.instant("abort", "txn", 1, "txn", 6.0, txn_id=9,
                args={"reason": "lock-conflict"})
    obs.instant("abort", "txn", 0, "txn", 7.0, txn_id=11, args={})
    res = LatencyAttributor(obs).attribute()
    assert res.aborted_attempts == 3
    assert res.abort_reasons == {"lock-conflict": 2, "unknown": 1}


# ---------------------------------------------------------------------------
# integration: a real observed run
# ---------------------------------------------------------------------------


def test_attribution_sums_match_end_to_end():
    bench = small_bench()
    result = bench.measure(4, warmup_us=60.0, window_us=250.0)
    assert result.commits > 0
    res = attribute_bench(bench)
    assert res.count > 0
    assert res.events_dropped == 0
    # the acceptance bar is 1%; the sweep is exact by construction
    assert res.max_residual_frac() < 0.01
    # every txn's phases cover its whole latency
    for t in res.txns[:50]:
        assert t.total_us == pytest.approx(t.latency_us, rel=1e-6)
    # wire/nic/dma all show up on a distributed workload
    assert res.phase_totals["wire"] > 0
    assert res.phase_totals["nic_service"] > 0
    assert res.phase_totals["dma"] > 0
    assert set(res.dominant_counts) <= set(ATTRIB_PHASES)
    d = res.to_dict()
    assert d["txns"] == res.count
    assert set(d["phases"]) == set(ATTRIB_PHASES)
    text = res.format()
    assert "latency attribution" in text
    assert "wire" in text


def test_attribution_on_baseline_system():
    bench = small_bench(system="drtmh")
    bench.measure(3, warmup_us=60.0, window_us=200.0)
    res = attribute_bench(bench)
    assert res.count > 0
    # baselines have no NIC runtime: everything lands in coarser buckets
    assert res.max_residual_frac() < 0.01
    assert res.phase_totals["nic_service"] == 0.0


def test_observer_neutral_with_attribution_installed():
    """An observed run commits the same transactions as an unobserved one
    (attribution instrumentation must not perturb timing)."""
    wl = Smallbank(3, accounts_per_server=1500, hot_keys_fraction=0.25,
                   seed=7)
    plain = Bench("xenic", wl, n_nodes=3, seed=7)
    r0 = plain.measure(3, warmup_us=60.0, window_us=200.0)
    wl2 = Smallbank(3, accounts_per_server=1500, hot_keys_fraction=0.25,
                    seed=7)
    observed = Bench("xenic", wl2, n_nodes=3, seed=7, obs=True)
    r1 = observed.measure(3, warmup_us=60.0, window_us=200.0)
    assert r0.commits == r1.commits
    assert r0.aborts == r1.aborts
    assert r0.median_latency_us == pytest.approx(r1.median_latency_us)
    assert r0.p99_latency_us == pytest.approx(r1.p99_latency_us)
