"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(5.0)
        fired.append(sim.now)
        yield sim.timeout(2.5)
        fired.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert fired == [5.0, 7.5]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_process_return_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        return 42

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.ok and p.value == 42


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("boom")

    def waiter(sim, child):
        with pytest.raises(ValueError):
            yield child
        return "handled"

    child = sim.spawn(bad(sim))
    w = sim.spawn(waiter(sim, child))
    sim.run()
    assert w.value == "handled"


def test_event_succeed_once():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(7)
    assert ev.value == 7
    with pytest.raises(SimulationError):
        ev.succeed(8)


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_fifo_ordering_same_timestamp():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in "abc":
        sim.spawn(proc(sim, tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_all_of_collects_values_in_order():
    sim = Simulator()

    def proc(sim, delay, val):
        yield sim.timeout(delay)
        return val

    def main(sim):
        ps = [sim.spawn(proc(sim, d, v)) for d, v in [(3, "x"), (1, "y"), (2, "z")]]
        vals = yield sim.all_of(ps)
        return vals

    m = sim.spawn(main(sim))
    sim.run()
    assert m.value == ["x", "y", "z"]
    assert sim.now == 3.0


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    ev = AllOf(sim, [])
    assert ev.triggered and ev.value == []


def test_any_of_returns_first():
    sim = Simulator()

    def main(sim):
        t1 = sim.timeout(5.0, "slow")
        t2 = sim.timeout(2.0, "fast")
        idx, val = yield sim.any_of([t1, t2])
        return idx, val

    m = sim.spawn(main(sim))
    sim.run()
    assert m.value == (1, "fast")


def test_any_of_requires_events():
    sim = Simulator()
    with pytest.raises(ValueError):
        AnyOf(sim, [])


def test_run_until_limit_pauses_at_time():
    sim = Simulator()
    done = []

    def proc(sim):
        yield sim.timeout(10.0)
        done.append(True)

    sim.spawn(proc(sim))
    sim.run(until=5.0)
    assert sim.now == 5.0 and not done
    sim.run()
    assert done


def test_run_until_event():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(3.0)
        return "v"

    p = sim.spawn(proc(sim))
    assert sim.run_until_event(p) == "v"


def test_run_until_event_drained_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        sim.run_until_event(ev)


def test_interrupt_delivers_cause():
    sim = Simulator()
    seen = []

    def victim(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            seen.append(intr.cause)
            yield sim.timeout(1.0)
        return "recovered"

    def attacker(sim, target):
        yield sim.timeout(2.0)
        target.interrupt("stop")

    v = sim.spawn(victim(sim))
    sim.spawn(attacker(sim, v))
    sim.run()
    assert seen == ["stop"]
    assert v.value == "recovered"
    # The process finished at t=3; the abandoned 100us timeout may still
    # advance the clock when it expires, which is fine.


def test_interrupt_finished_process_noop():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    p = sim.spawn(quick(sim))
    sim.run()
    p.interrupt("late")  # must not raise
    sim.run()


def test_stale_timeout_after_interrupt_ignored():
    sim = Simulator()
    wakeups = []

    def victim(sim):
        try:
            yield sim.timeout(5.0)
            wakeups.append("timeout")
        except Interrupt:
            wakeups.append("interrupt")
        yield sim.timeout(10.0)
        wakeups.append("second")

    v = sim.spawn(victim(sim))

    def attacker(sim):
        yield sim.timeout(1.0)
        v.interrupt()

    sim.spawn(attacker(sim))
    sim.run()
    # The original 5.0 timeout must not resume the process a second time.
    assert wakeups == ["interrupt", "second"]


def test_yield_non_event_fails_process():
    sim = Simulator()

    def bad(sim):
        yield 42

    p = sim.spawn(bad(sim))
    sim.run()
    assert not p.ok
    assert isinstance(p.value, SimulationError)


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.spawn((sim.timeout(5.0) for _ in range(1)))
    sim.run()
    with pytest.raises(SimulationError):
        sim._schedule_at(sim.now - 1.0, sim.event(), None)


def test_nested_process_spawning():
    sim = Simulator()
    results = []

    def child(sim, n):
        yield sim.timeout(n)
        return n * 2

    def parent(sim):
        val = yield sim.spawn(child(sim, 3))
        results.append(val)
        val = yield sim.spawn(child(sim, 4))
        results.append(val)

    sim.spawn(parent(sim))
    sim.run()
    assert results == [6, 8]
    assert sim.now == 7.0
