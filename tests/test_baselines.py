"""End-to-end tests for the four RDMA baseline systems."""

import pytest

from repro.baselines import SYSTEMS, BaselineCluster, DrTMH, DrTMH_NC, DrTMR, FaSST
from repro.core import TxnSpec
from repro.sim import Simulator


def make_cluster(system, n_nodes=3, **kw):
    sim = Simulator()
    cluster = BaselineCluster(sim, n_nodes, SYSTEMS[system],
                              keys_per_shard=256, value_size=64, **kw)
    for k in range(n_nodes * 64):
        cluster.load_key(k, value=("init", k))
    cluster.start()
    return sim, cluster


def run_txn(sim, cluster, node_id, spec):
    proc = sim.spawn(cluster.coordinators[node_id].run_transaction(spec))
    return sim.run_until_event(proc, limit=1e7)


ALL = sorted(SYSTEMS)


@pytest.mark.parametrize("system", ALL)
def test_remote_read_only(system):
    sim, cluster = make_cluster(system)
    k = 1  # shard 1
    txn = run_txn(sim, cluster, 0, TxnSpec(read_keys=[k], write_keys=[],
                                           read_only=True))
    assert txn.read_values[k][0] == ("init", k)


@pytest.mark.parametrize("system", ALL)
def test_remote_write_commits(system):
    sim, cluster = make_cluster(system)
    k = 1
    txn = run_txn(sim, cluster, 0,
                  TxnSpec(read_keys=[k], write_keys=[k],
                          logic=lambda r, s: {k: "updated"}))
    sim.run()
    assert cluster.read_committed_value(k) == "updated"
    obj = cluster.nodes[1].tables[1].get_object(k)
    assert obj.version == 1
    assert not obj.locked


@pytest.mark.parametrize("system", ALL)
def test_backups_receive_replicated_writes(system):
    sim, cluster = make_cluster(system)
    k = 1
    run_txn(sim, cluster, 0,
            TxnSpec(read_keys=[k], write_keys=[k],
                    logic=lambda r, s: {k: "replicated"}))
    sim.run()
    for backup in cluster.backups_of(1):
        obj = cluster.nodes[backup].tables[1].get_object(k)
        assert obj.value == "replicated"
        assert obj.version == 1


@pytest.mark.parametrize("system", ALL)
def test_multi_shard_write(system):
    sim, cluster = make_cluster(system)
    k1, k2 = 1, 2
    run_txn(sim, cluster, 0,
            TxnSpec(read_keys=[k1, k2], write_keys=[k1, k2],
                    logic=lambda r, s: {k1: "a", k2: "b"}))
    sim.run()
    assert cluster.read_committed_value(k1) == "a"
    assert cluster.read_committed_value(k2) == "b"


@pytest.mark.parametrize("system", ALL)
def test_local_transaction(system):
    sim, cluster = make_cluster(system)
    k = 0  # shard 0, local to coordinator 0
    run_txn(sim, cluster, 0,
            TxnSpec(read_keys=[k], write_keys=[k],
                    logic=lambda r, s: {k: "local"}))
    sim.run()
    assert cluster.read_committed_value(k) == "local"


@pytest.mark.parametrize("system", ALL)
def test_no_locks_leak(system):
    sim, cluster = make_cluster(system)
    for k in (0, 1, 2, 3, 4, 5):
        run_txn(sim, cluster, (k + 1) % 3,
                TxnSpec(read_keys=[k], write_keys=[k],
                        logic=lambda r, s, k=k: {k: "v%d" % k}))
    sim.run()
    for node in cluster.nodes:
        for table in node.tables.values():
            for obj in table.objects():
                assert not obj.locked, "leaked lock on %r" % obj


@pytest.mark.parametrize("system", ALL)
def test_concurrent_conflicting_writers_serialize(system):
    sim, cluster = make_cluster(system)
    k = 2
    done = []

    def writer(coord, tag):
        txn = yield from coord.run_transaction(
            TxnSpec(read_keys=[k], write_keys=[k],
                    logic=lambda r, s: {k: tag})
        )
        done.append((tag, txn.attempts))

    sim.spawn(writer(cluster.coordinators[0], "w0"))
    sim.spawn(writer(cluster.coordinators[1], "w1"))
    sim.run()
    assert len(done) == 2
    obj = cluster.nodes[2].tables[2].get_object(k)
    assert obj.version == 2
    assert obj.value in ("w0", "w1")


def test_fasst_consumes_target_host_cpu():
    sim, cluster = make_cluster("fasst")
    k = 1
    before = cluster.nodes[1].host_cores.jobs_executed
    run_txn(sim, cluster, 0,
            TxnSpec(read_keys=[k], write_keys=[k],
                    logic=lambda r, s: {k: "x"}))
    sim.run()
    assert cluster.nodes[1].host_cores.jobs_executed > before


def test_drtmh_one_sided_reads_bypass_target_cpu():
    sim, cluster = make_cluster("drtmh")
    k = 1
    before = cluster.nodes[1].host_cores.jobs_executed
    run_txn(sim, cluster, 0, TxnSpec(read_keys=[k], write_keys=[],
                                     read_only=True))
    assert cluster.nodes[1].host_cores.jobs_executed == before
    assert cluster.nodes[0].rdma.ops["read"] >= 1


def test_drtmh_nc_issues_more_reads_than_cached():
    def count_reads(system):
        sim, cluster = make_cluster(system)
        # fill shard 1's table enough to create chains
        extra = [3 * i + 1 for i in range(64, 320)]
        for k in extra:
            cluster.load_key(k, value="pad")
        reads = 0
        for k in extra[:24]:
            run_txn(sim, cluster, 0, TxnSpec(read_keys=[k], write_keys=[],
                                             read_only=True))
        return cluster.nodes[0].rdma.ops["read"]

    assert count_reads("drtmh_nc") >= count_reads("drtmh")


def test_drtmr_uses_atomics_and_no_validation():
    sim, cluster = make_cluster("drtmr")
    k = 1
    run_txn(sim, cluster, 0,
            TxnSpec(read_keys=[k], write_keys=[k],
                    logic=lambda r, s: {k: "locked-write"}))
    sim.run()
    assert cluster.nodes[0].rdma.ops["atomic"] >= 2  # lock + unlock
    assert cluster.read_committed_value(k) == "locked-write"


def test_drtmr_read_only_still_locks_and_unlocks():
    sim, cluster = make_cluster("drtmr")
    k = 1
    txn = run_txn(sim, cluster, 0, TxnSpec(read_keys=[k], write_keys=[],
                                           read_only=True))
    sim.run()
    assert txn.read_values[k][0] == ("init", k)
    obj = cluster.nodes[1].tables[1].get_object(k)
    assert not obj.locked
    assert cluster.nodes[0].rdma.ops["atomic"] >= 2


def test_xenic_and_baselines_share_spec_interface():
    """The same TxnSpec must run unchanged on Xenic and every baseline."""
    from repro.core import XenicCluster, XenicConfig

    spec_fn = lambda k: TxnSpec(read_keys=[k], write_keys=[k],
                                logic=lambda r, s: {k: "same"})
    sim = Simulator()
    xcluster = XenicCluster(sim, 3, config=XenicConfig(), keys_per_shard=128)
    for k in range(96):
        xcluster.load_key(k, value=("init", k))
    xcluster.start()
    proc = sim.spawn(xcluster.protocols[0].run_transaction(spec_fn(1)))
    sim.run_until_event(proc, limit=1e6)

    sim2, bcluster = make_cluster("drtmh")
    run_txn(sim2, bcluster, 0, spec_fn(1))
    sim2.run()
    assert bcluster.read_committed_value(1) == "same"
