"""Tests for packet-level RX delivery, the CLI, and misc coverage gaps."""

import pytest

from repro.hw import EthernetPort, Fabric, NetMessage
from repro.sim import Simulator


def test_fabric_rx_packet_without_port_falls_back():
    sim = Simulator()
    fabric = Fabric(sim)
    got = []
    fabric.register(5, lambda m: got.append(m.kind))
    fabric.rx_packet(5, [NetMessage(0, 5, "a", 10), NetMessage(0, 5, "b", 10)])
    assert got == ["a", "b"]


def test_port_rx_serializes_packets():
    sim = Simulator()
    fabric = Fabric(sim)
    times = []
    p0 = EthernetPort(sim, fabric, 0, aggregation=False)
    p1 = EthernetPort(sim, fabric, 1)
    fabric.register(1, lambda m: times.append(sim.now))
    fabric.register(0, lambda m: None)
    for _ in range(3):
        p0.send(NetMessage(0, 1, "m", 64))
    sim.run()
    assert len(times) == 3
    assert p1.packets_received == 3
    # per-packet RX overhead spaces deliveries by >= 0.1us
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(g >= 0.099 for g in gaps)


def test_aggregated_packet_single_rx_overhead():
    sim = Simulator()
    fabric = Fabric(sim)
    times = []
    p0 = EthernetPort(sim, fabric, 0, aggregation=True)
    p1 = EthernetPort(sim, fabric, 1)
    fabric.register(1, lambda m: times.append(sim.now))
    fabric.register(0, lambda m: None)
    for _ in range(10):
        p0.send(NetMessage(0, 1, "m", 32))
    sim.run()
    assert len(times) == 10
    # messages in the same gather-list arrive together
    assert p1.packets_received < 10


def test_cli_list_and_unknown():
    from repro.__main__ import main

    assert main(["list"]) == 0
    assert main([]) == 0
    with pytest.raises(SystemExit):
        main(["definitely-not-a-command"])


def test_cli_tab1_runs():
    from repro.__main__ import main

    assert main(["tab1"]) == 0


def test_cli_offpath_runs():
    from repro.__main__ import main

    assert main(["offpath"]) == 0


def test_hardware_params_network_override():
    from repro.hw.params import TESTBED, testbed_params

    fifty = testbed_params(50.0)
    assert fifty.nic.eth.bandwidth_gbps == 50.0
    assert fifty.rdma.bandwidth_gbps == 50.0
    assert testbed_params(100.0) is TESTBED


def test_btree_op_cost_positive():
    from repro.store import BPlusTree

    t = BPlusTree()
    assert t.op_cost_us() > 0


def test_read_local_prefers_pending_commit():
    from repro.core import XenicCluster, XenicConfig
    from repro.store.log import LogRecord

    sim = Simulator()
    cluster = XenicCluster(sim, 3, config=XenicConfig(), keys_per_shard=128)
    for k in range(96):
        cluster.load_key(k, value="old")
    node = cluster.nodes[0]
    record = LogRecord(9, "commit", 0, [(0, "new", 1)])
    node.note_pending_commit(record)
    value, version = node.read_local(0)
    assert value == "new" and version == 1
    # other-shard records are ignored
    node.note_pending_commit(LogRecord(10, "commit", 1, [(1, "x", 5)]))
    assert 1 not in node.pending_local
